(* Compiled executable plans (Exec.plan / Exec.run_plan): one plan
   replayed against many data sets must be byte-identical to fresh
   Exec.execute calls — for every domain count, coalesce setting, pool
   state and fault plan — and a warm run must allocate no new pool
   blocks. The QCheck matrix sweeps domains 1/3 x coalesce on/off x
   fault plan over three statement shapes (substituted gemm, scalar
   gemm, accumulating vector add); the deterministic cases pin the
   steady-state pool contract and the Api routing. *)

module Api = Distal.Api
module Machine = Api.Machine
module Exec = Api.Exec
module Stats = Api.Stats
module Dense = Api.Dense
module Fault = Api.Fault

let to_alcotest test = QCheck_alcotest.to_alcotest ~long:true test

(* {2 Plan shapes} *)

let gemm_schedule ~substitute =
  "distribute_onto({i,j}, {io,jo}, {ii,ji}, [2,2]); split(k, ko, ki, 4);\n\
   reorder(ko, ii, ji, ki); communicate(A, jo); communicate({B,C}, ko);"
  ^ (if substitute then " substitute({ii,ji,ki}, gemm)" else "")

(* SUMMA with a block-cyclic B on a 2x2 grid: the run phase replays
   strided fragment fetches, kernel slices and a reduction-free output. *)
let gemm_plan ~substitute =
  let machine = Machine.grid [| 2; 2 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x%2,y%2]";
          Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
        ]
      ()
  in
  Api.compile_script_exn p ~schedule:(gemm_schedule ~substitute)

(* Accumulating statement: the output's initial value is an input and the
   run phase must replay the read-modify-write exactly. *)
let accum_plan () =
  let machine = Machine.grid [| 4 |] in
  let p =
    Api.problem_exn ~machine ~stmt:"A(i) += B(i) * C(i)"
      ~tensors:
        [
          Api.tensor "A" [| 12 |] ~dist:"[x] -> [x]";
          Api.tensor "B" [| 12 |] ~dist:"[x] -> [x%1]";
          Api.tensor "C" [| 12 |] ~dist:"[x] -> [x]";
        ]
      ()
  in
  Api.compile_script_exn p
    ~schedule:"divide(i, io, ii, 4); distribute(io); communicate({A,B,C}, io)"

let plan_of_variant = function
  | 0 -> gemm_plan ~substitute:true
  | 1 -> gemm_plan ~substitute:false
  | _ -> accum_plan ()

(* Kill a processor at step 0 with checkpointing on: plan-time stats pay
   the recovery episode while the replayed data path is fault-oblivious —
   exact, because recovery is bit-identical to the fault-free run. *)
let kill_plan =
  Fault.plan ~checkpoint:true ~kills:[ Fault.kill ~proc:0 ~step:0 () ] ()

(* {2 Byte-exact comparison} *)

let bits = function
  | None -> []
  | Some d -> List.init (Dense.size d) (fun i -> Int64.bits_of_float (Dense.get_lin d i))

let check_same_result ctx (fresh : Exec.result) (reused : Exec.result) =
  if bits fresh.Exec.output <> bits reused.Exec.output then
    QCheck.Test.fail_reportf "%s: output bytes diverge" ctx;
  let f = Stats.to_string fresh.Exec.stats in
  let r = Stats.to_string reused.Exec.stats in
  if not (String.equal f r) then
    QCheck.Test.fail_reportf "%s: stats diverge\n%s\nvs\n%s" ctx f r;
  true

(* {2 The matrix property}

   One compiled plan, N data sets: each run_plan must match a fresh
   replanning run (~reuse:false) byte for byte. *)

let reuse_matrix_once seed =
  let variant = seed mod 3 in
  let coalesce = seed land 4 = 0 in
  let domains = if seed land 8 = 0 then 1 else 3 in
  let faults = if seed land 16 = 0 then None else Some kill_plan in
  let plan = plan_of_variant variant in
  let ep = Api.eplan_exn ~coalesce ?faults plan in
  let ctx =
    Printf.sprintf "variant %d coalesce %b domains %d faults %b seed %d" variant
      coalesce domains (faults <> None) seed
  in
  List.for_all
    (fun n ->
      let data = Api.random_inputs ~seed:((7919 * seed) + n) plan in
      let fresh =
        match Api.run ~reuse:false ~coalesce ~domains ?faults plan ~data with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "%s: fresh run failed: %s" ctx e
      in
      let reused =
        match Exec.run_plan ~domains ep ~data with
        | Ok r -> r
        | Error e -> QCheck.Test.fail_reportf "%s: run_plan failed: %s" ctx e
      in
      check_same_result (Printf.sprintf "%s dataset %d" ctx n) fresh reused)
    [ 0; 1; 2 ]

let qcheck_reuse_matrix =
  QCheck.Test.make ~name:"run_plan == fresh execute (domains x coalesce x faults)"
    ~count:48 QCheck.small_nat
    (fun seed -> reuse_matrix_once seed)

(* Same property over random programs: reuse Test_fuzz's statement /
   distribution / schedule generators, then check one compiled plan
   against fresh replanning runs on two distinct data sets. *)
let random_reuse_once seed =
  let module Rng = Distal_support.Rng in
  let rng = Rng.create ((seed * 31) + 7) in
  let stmt, shapes, lhs_vars, rhs_vars = Test_fuzz.gen_stmt rng in
  let mdims = Array.init (1 + Rng.int rng 2) (fun _ -> 1 + Rng.int rng 3) in
  let machine = Machine.grid mdims in
  let tensors =
    List.map
      (fun (name, shape) ->
        Api.tensor_d name shape
          (Test_fuzz.gen_dist rng ~rank:(Array.length shape) ~mdims))
      shapes
  in
  match Api.problem ~machine ~stmt ~tensors () with
  | Error e -> QCheck.Test.fail_reportf "problem construction failed: %s" e
  | Ok problem -> (
      let schedule = Test_fuzz.gen_schedule rng ~lhs_vars ~rhs_vars in
      match Api.compile problem ~schedule with
      | Error e -> QCheck.Test.fail_reportf "compile failed for %s: %s" stmt e
      | Ok plan ->
          let nprocs = Array.fold_left ( * ) 1 mdims in
          let coalesce = Rng.int rng 2 = 0 in
          let domains = if Rng.int rng 2 = 0 then 1 else 3 in
          (* A kill needs a live processor left to fail over to. *)
          let faults =
            if nprocs >= 2 && Rng.int rng 2 = 0 then Some kill_plan else None
          in
          let ep =
            match Api.eplan ~coalesce ?faults plan with
            | Ok ep -> ep
            | Error e -> QCheck.Test.fail_reportf "eplan failed for %s: %s" stmt e
          in
          let ctx = Printf.sprintf "%s (seed %d)" stmt seed in
          List.for_all
            (fun n ->
              let data = Api.random_inputs ~seed:((131 * seed) + n) plan in
              let fresh =
                match Api.run ~reuse:false ~coalesce ~domains ?faults plan ~data with
                | Ok r -> r
                | Error e ->
                    QCheck.Test.fail_reportf "%s: fresh run failed: %s" ctx e
              in
              let reused =
                match Exec.run_plan ~domains ep ~data with
                | Ok r -> r
                | Error e -> QCheck.Test.fail_reportf "%s: run_plan failed: %s" ctx e
              in
              check_same_result (Printf.sprintf "%s dataset %d" ctx n) fresh reused)
            [ 0; 1 ])

let qcheck_random_reuse =
  QCheck.Test.make ~name:"random stmt x dist x schedule: plan reuse == replan"
    ~count:60 QCheck.small_nat
    (fun seed -> random_reuse_once seed)

(* {2 Deterministic cases} *)

(* Steady state: after the first run primed the pool, further runs are
   served entirely from free lists — the alloc counter freezes while the
   hit counter keeps climbing. This is the "no per-fragment Dense.create
   on the data path" acceptance check, in counter form. *)
let test_pool_steady_state () =
  let plan = gemm_plan ~substitute:true in
  let ep = Api.eplan_exn plan in
  let run n =
    let data = Api.random_inputs ~seed:n plan in
    match Exec.run_plan ep ~data with
    | Ok r -> r
    | Error e -> Alcotest.failf "run_plan failed: %s" e
  in
  ignore (run 1);
  let s1 = Exec.plan_pool_stats ep in
  ignore (run 2);
  ignore (run 3);
  let s3 = Exec.plan_pool_stats ep in
  Alcotest.(check int) "no new allocations after warmup" s1.Distal_support.Buf_pool.allocs
    s3.Distal_support.Buf_pool.allocs;
  Alcotest.(check bool) "warm runs hit the pool" true
    (s3.Distal_support.Buf_pool.hits > s1.Distal_support.Buf_pool.hits);
  Alcotest.(check int) "three completed runs" 3 (Exec.plan_runs ep)

(* The modeled stats fixed at plan time are the stats a fresh Full run
   reports (the Full/Model parity contract, inherited by plans). *)
let test_plan_stats_parity () =
  List.iter
    (fun variant ->
      let plan = plan_of_variant variant in
      let ep = Api.eplan_exn plan in
      let data = Api.random_inputs ~seed:11 plan in
      let fresh = Api.run_exn ~reuse:false plan ~data in
      Alcotest.(check string)
        (Printf.sprintf "variant %d plan stats == fresh stats" variant)
        (Stats.to_string fresh.Exec.stats)
        (Stats.to_string (Exec.plan_stats ep)))
    [ 0; 1; 2 ]

(* Api.run's reuse path: repeated Full-mode runs on one plan share one
   cached executable plan; ~reuse:false bypasses it. *)
let test_api_routes_through_cache () =
  let plan = accum_plan () in
  let d1 = Api.random_inputs ~seed:1 plan in
  let d2 = Api.random_inputs ~seed:2 plan in
  let r1 = Api.run_exn ~reuse:true plan ~data:d1 in
  let r2 = Api.run_exn ~reuse:true plan ~data:d2 in
  let ep = Api.eplan_exn plan in
  Alcotest.(check int) "both runs used the cached plan" 2 (Exec.plan_runs ep);
  let f1 = Api.run_exn ~reuse:false plan ~data:d1 in
  Alcotest.(check int) "reuse:false bypasses the plan" 2 (Exec.plan_runs ep);
  Alcotest.(check bool) "bytes match the replanning path" true
    (bits r1.Exec.output = bits f1.Exec.output);
  Alcotest.(check bool) "distinct data, distinct bytes" true
    (bits r1.Exec.output <> bits r2.Exec.output)

(* Distinct (coalesce, faults) options compile distinct cache entries;
   repeated identical options share one. *)
let test_eplan_cache_keys () =
  let plan = gemm_plan ~substitute:true in
  let a = Api.eplan_exn ~coalesce:true plan in
  let b = Api.eplan_exn ~coalesce:true plan in
  let c = Api.eplan_exn ~coalesce:false plan in
  let d = Api.eplan_exn ~coalesce:true ~faults:kill_plan plan in
  Alcotest.(check bool) "same options share the entry" true (a == b);
  Alcotest.(check bool) "coalesce keys apart" true (a != c);
  Alcotest.(check bool) "faults key apart" true (a != d)

let suites =
  [
    ( "plan_reuse",
      [
        to_alcotest qcheck_reuse_matrix;
        to_alcotest qcheck_random_reuse;
        Alcotest.test_case "pool steady state" `Quick test_pool_steady_state;
        Alcotest.test_case "plan stats parity" `Quick test_plan_stats_parity;
        Alcotest.test_case "api routes through cache" `Quick test_api_routes_through_cache;
        Alcotest.test_case "eplan cache keys" `Quick test_eplan_cache_keys;
      ] );
  ]
