module Rect = Distal_tensor.Rect
module Dense = Distal_tensor.Dense
module Kernels = Distal_tensor.Kernels
module Rng = Distal_support.Rng

let rect lo hi = Rect.make ~lo ~hi

let test_rect_basics () =
  let r = rect [| 0; 2 |] [| 4; 6 |] in
  Alcotest.(check int) "volume" 16 (Rect.volume r);
  Alcotest.(check bool) "contains" true (Rect.contains r [| 3; 5 |]);
  Alcotest.(check bool) "not contains" false (Rect.contains r [| 4; 5 |]);
  Alcotest.(check string) "to_string" "[0,4)x[2,6)" (Rect.to_string r)

let test_rect_inter () =
  let a = rect [| 0; 0 |] [| 4; 4 |] and b = rect [| 2; 2 |] [| 6; 6 |] in
  let i = Rect.inter a b in
  Alcotest.(check string) "inter" "[2,4)x[2,4)" (Rect.to_string i);
  let disjoint = Rect.inter a (rect [| 5; 5 |] [| 6; 6 |]) in
  Alcotest.(check bool) "empty" true (Rect.is_empty disjoint)

let test_rect_hull_subset () =
  let a = rect [| 0; 0 |] [| 2; 2 |] and b = rect [| 3; 1 |] [| 5; 4 |] in
  let h = Rect.hull a b in
  Alcotest.(check string) "hull" "[0,5)x[0,4)" (Rect.to_string h);
  Alcotest.(check bool) "subset" true (Rect.subset a h);
  Alcotest.(check bool) "not subset" false (Rect.subset h a);
  let empty = rect [| 1; 1 |] [| 1; 1 |] in
  Alcotest.(check bool) "empty subset of anything" true (Rect.subset empty a)

let test_rect_iter () =
  let r = rect [| 1 |] [| 4 |] in
  let pts = ref [] in
  Rect.iter r (fun c -> pts := c.(0) :: !pts);
  Alcotest.(check (list int)) "points" [ 1; 2; 3 ] (List.rev !pts)

let test_rect_scalar () =
  let r = Rect.full [||] in
  Alcotest.(check int) "scalar volume" 1 (Rect.volume r);
  Alcotest.(check bool) "scalar nonempty" false (Rect.is_empty r)

let test_dense_get_set () =
  let t = Dense.create [| 2; 3 |] in
  Dense.set t [| 1; 2 |] 5.0;
  Alcotest.(check (float 0.0)) "get" 5.0 (Dense.get t [| 1; 2 |]);
  Alcotest.(check (float 0.0)) "other zero" 0.0 (Dense.get t [| 0; 0 |]);
  Alcotest.(check int) "bytes" 48 (Dense.bytes t)

let test_dense_extract_blit () =
  let t = Dense.init [| 4; 4 |] (fun c -> float_of_int ((c.(0) * 10) + c.(1))) in
  let r = rect [| 1; 2 |] [| 3; 4 |] in
  let sub = Dense.extract t r in
  Alcotest.(check (array int)) "shape" [| 2; 2 |] (Dense.shape sub);
  Alcotest.(check (float 0.0)) "corner" 12.0 (Dense.get sub [| 0; 0 |]);
  Alcotest.(check (float 0.0)) "last" 23.0 (Dense.get sub [| 1; 1 |]);
  let dst = Dense.create [| 4; 4 |] in
  Dense.blit_into ~src:sub ~dst r;
  Alcotest.(check (float 0.0)) "blit back" 23.0 (Dense.get dst [| 2; 3 |]);
  Dense.accumulate_into ~src:sub ~dst r;
  Alcotest.(check (float 0.0)) "accumulate" 46.0 (Dense.get dst [| 2; 3 |])

(* Out-of-bounds rects and mismatched shapes must raise Invalid_argument
   naming the operation, the rect and the shape — not trip an assert. *)
let test_dense_invalid_args () =
  let expect_invalid name needle f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
        let mentions s =
          let n = String.length s and m = String.length msg in
          let rec go i = i + n <= m && (String.sub msg i n = s || go (i + 1)) in
          go 0
        in
        if not (mentions needle && mentions name) then
          Alcotest.failf "%s: message %S lacks %S" name msg needle
  in
  let t = Dense.init [| 4; 4 |] (fun c -> float_of_int (c.(0) + c.(1))) in
  let oob = rect [| 2; 2 |] [| 5; 4 |] in
  expect_invalid "extract" "[2,5)x[2,4)" (fun () -> Dense.extract t oob);
  let sub = Dense.create [| 2; 2 |] in
  let inb = rect [| 0; 0 |] [| 2; 2 |] in
  expect_invalid "blit_into" "[2,5)x[2,4)" (fun () ->
      Dense.blit_into ~src:sub ~dst:t oob);
  expect_invalid "accumulate_into" "[2,5)x[2,4)" (fun () ->
      Dense.accumulate_into ~src:sub ~dst:t oob);
  (* Shape/extent mismatch: a 2x2 rect against a 3x1 source. *)
  let wrong = Dense.create [| 3; 1 |] in
  expect_invalid "blit_into" "3x1" (fun () -> Dense.blit_into ~src:wrong ~dst:t inb);
  expect_invalid "extract_into" "3x1" (fun () ->
      Dense.extract_into ~src:t ~dst:wrong inb);
  (* of_buf needs prod(shape) elements. *)
  let b = Dense.unsafe_data (Dense.create [| 3 |]) in
  expect_invalid "of_buf" "2x3" (fun () -> Dense.of_buf b [| 2; 3 |]);
  (* And the happy paths still work on the same values. *)
  let v = Dense.of_buf b [| 3 |] in
  Dense.set v [| 1 |] 9.0;
  Alcotest.(check (float 0.0)) "of_buf shares storage" 9.0
    (Bigarray.Array1.get b 1);
  Dense.extract_into ~src:t ~dst:sub (rect [| 1; 1 |] [| 3; 3 |]);
  Alcotest.(check (float 0.0)) "extract_into" 4.0 (Dense.get sub [| 1; 1 |])

let test_dense_scalar () =
  let t = Dense.create [||] in
  Alcotest.(check int) "size" 1 (Dense.size t);
  Dense.add_at t [||] 2.5;
  Alcotest.(check (float 0.0)) "scalar value" 2.5 (Dense.get t [||])

let test_approx_equal () =
  let a = Dense.init [| 3 |] (fun c -> float_of_int c.(0)) in
  let b = Dense.init [| 3 |] (fun c -> float_of_int c.(0) +. 1e-12) in
  Alcotest.(check bool) "close" true (Dense.approx_equal a b);
  let c = Dense.init [| 3 |] (fun c -> float_of_int c.(0) +. 0.5) in
  Alcotest.(check bool) "far" false (Dense.approx_equal a c)

(* Naive per-element references for the kernels. *)
let naive_gemm a b c =
  let m = (Dense.shape a).(0) and n = (Dense.shape a).(1) in
  let k = (Dense.shape b).(1) in
  let out = Dense.copy a in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      for kk = 0 to k - 1 do
        Dense.add_at out [| i; j |] (Dense.get b [| i; kk |] *. Dense.get c [| kk; j |])
      done
    done
  done;
  out

let test_gemm () =
  let rng = Rng.create 1 in
  let b = Dense.random rng [| 5; 7 |] and c = Dense.random rng [| 7; 6 |] in
  let a = Dense.create [| 5; 6 |] in
  let expected = naive_gemm a b c in
  Kernels.gemm ~a ~b ~c;
  Alcotest.(check bool) "gemm matches naive" true (Dense.approx_equal a expected)

let test_gemm_accumulates () =
  let rng = Rng.create 2 in
  let b = Dense.random rng [| 3; 3 |] and c = Dense.random rng [| 3; 3 |] in
  let a = Dense.init [| 3; 3 |] (fun _ -> 1.0) in
  let expected = naive_gemm a b c in
  Kernels.gemm ~a ~b ~c;
  Alcotest.(check bool) "gemm += semantics" true (Dense.approx_equal a expected)

let test_gemv () =
  let rng = Rng.create 3 in
  let b = Dense.random rng [| 4; 5 |] and c = Dense.random rng [| 5 |] in
  let a = Dense.create [| 4 |] in
  Kernels.gemv ~a ~b ~c;
  for i = 0 to 3 do
    let expected = ref 0.0 in
    for k = 0 to 4 do
      expected := !expected +. (Dense.get b [| i; k |] *. Dense.get c [| k |])
    done;
    Alcotest.(check (float 1e-12)) "gemv row" !expected (Dense.get a [| i |])
  done

let test_ttv () =
  let rng = Rng.create 4 in
  let b = Dense.random rng [| 3; 4; 5 |] and c = Dense.random rng [| 5 |] in
  let a = Dense.create [| 3; 4 |] in
  Kernels.ttv ~a ~b ~c;
  let expected = ref 0.0 in
  for k = 0 to 4 do
    expected := !expected +. (Dense.get b [| 2; 3; k |] *. Dense.get c [| k |])
  done;
  Alcotest.(check (float 1e-12)) "ttv entry" !expected (Dense.get a [| 2; 3 |])

let test_ttm () =
  let rng = Rng.create 5 in
  let b = Dense.random rng [| 2; 3; 4 |] and c = Dense.random rng [| 4; 5 |] in
  let a = Dense.create [| 2; 3; 5 |] in
  Kernels.ttm ~a ~b ~c;
  let expected = ref 0.0 in
  for k = 0 to 3 do
    expected := !expected +. (Dense.get b [| 1; 2; k |] *. Dense.get c [| k; 4 |])
  done;
  Alcotest.(check (float 1e-12)) "ttm entry" !expected (Dense.get a [| 1; 2; 4 |])

let test_mttkrp () =
  let rng = Rng.create 6 in
  let b = Dense.random rng [| 2; 3; 4 |] in
  let c = Dense.random rng [| 3; 5 |] in
  let d = Dense.random rng [| 4; 5 |] in
  let a = Dense.create [| 2; 5 |] in
  Kernels.mttkrp ~a ~b ~c ~d;
  let expected = ref 0.0 in
  for j = 0 to 2 do
    for k = 0 to 3 do
      expected :=
        !expected
        +. Dense.get b [| 1; j; k |] *. Dense.get c [| j; 2 |] *. Dense.get d [| k; 2 |]
    done
  done;
  Alcotest.(check (float 1e-12)) "mttkrp entry" !expected (Dense.get a [| 1; 2 |])

let test_inner_product () =
  let x = Dense.init [| 2; 2 |] (fun c -> float_of_int (c.(0) + c.(1))) in
  let y = Dense.init [| 2; 2 |] (fun _ -> 2.0) in
  Alcotest.(check (float 1e-12)) "innerprod" 8.0 (Kernels.inner_product x y)

let test_flops () =
  Alcotest.(check (float 0.0)) "gemm flops" 2000.0 (Kernels.flops "gemm" [| 10; 10; 10 |]);
  Alcotest.(check (float 0.0)) "mttkrp flops" 3000.0 (Kernels.flops "mttkrp" [| 10; 10; 10 |])

let qcheck_extract_blit_roundtrip =
  QCheck.Test.make ~name:"extract/blit roundtrip" ~count:100
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (h, w) ->
      let rng = Rng.create ((h * 17) + w) in
      let t = Dense.random rng [| h; w |] in
      let r = Rect.full [| h; w |] in
      let copy = Dense.create [| h; w |] in
      Dense.blit_into ~src:(Dense.extract t r) ~dst:copy r;
      Dense.approx_equal t copy)

let suites =
  [
    ( "rect",
      [
        Alcotest.test_case "basics" `Quick test_rect_basics;
        Alcotest.test_case "inter" `Quick test_rect_inter;
        Alcotest.test_case "hull/subset" `Quick test_rect_hull_subset;
        Alcotest.test_case "iter" `Quick test_rect_iter;
        Alcotest.test_case "scalar" `Quick test_rect_scalar;
      ] );
    ( "dense",
      [
        Alcotest.test_case "get/set" `Quick test_dense_get_set;
        Alcotest.test_case "extract/blit" `Quick test_dense_extract_blit;
        Alcotest.test_case "invalid args" `Quick test_dense_invalid_args;
        Alcotest.test_case "scalar" `Quick test_dense_scalar;
        Alcotest.test_case "approx_equal" `Quick test_approx_equal;
        QCheck_alcotest.to_alcotest qcheck_extract_blit_roundtrip;
      ] );
    ( "kernels",
      [
        Alcotest.test_case "gemm" `Quick test_gemm;
        Alcotest.test_case "gemm accumulates" `Quick test_gemm_accumulates;
        Alcotest.test_case "gemv" `Quick test_gemv;
        Alcotest.test_case "ttv" `Quick test_ttv;
        Alcotest.test_case "ttm" `Quick test_ttm;
        Alcotest.test_case "mttkrp" `Quick test_mttkrp;
        Alcotest.test_case "inner product" `Quick test_inner_product;
        Alcotest.test_case "flops" `Quick test_flops;
      ] );
  ]
