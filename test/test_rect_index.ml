(* The spatial tile index must be a drop-in replacement for the linear
   scan over a distribution's tiles: same pieces, same payloads, same
   order, for arbitrary tile sets and query rects. *)

module Rect = Distal_tensor.Rect
module Rect_index = Distal_tensor.Rect_index
module Rng = Distal_support.Rng
module Api = Distal.Api
module D = Api.Distnot
module Machine = Api.Machine

(* The scan the index replaced. *)
let linear tiles rect =
  List.filter_map
    (fun (r, v) ->
      let piece = Rect.inter rect r in
      if Rect.is_empty piece then None else Some (piece, v))
    tiles

let show_pieces ps =
  String.concat "; "
    (List.map (fun (r, v) -> Printf.sprintf "%s=%d" (Rect.to_string r) v) ps)

let check_same ~what tiles rect =
  let idx = Rect_index.build tiles in
  let got = Rect_index.query idx rect in
  let want = linear tiles rect in
  if got <> want then
    QCheck.Test.fail_reportf "%s: query %s over %d tiles:\n  index  %s\n  linear %s"
      what (Rect.to_string rect) (List.length tiles) (show_pieces got)
      (show_pieces want)
  else true

(* Random (possibly overlapping, possibly empty) tiles and query rects. *)
let random_rect rng dims extent =
  let lo = Array.init dims (fun _ -> Rng.int rng (extent + 1)) in
  let hi = Array.map (fun l -> min extent (l + Rng.int rng (extent / 2 + 1))) lo in
  Rect.make ~lo ~hi

let fuzz_random seed =
  let rng = Rng.create seed in
  let dims = 1 + Rng.int rng 3 in
  let extent = 4 + Rng.int rng 12 in
  let ntiles = Rng.int rng 40 in
  let tiles = List.init ntiles (fun i -> (random_rect rng dims extent, i)) in
  let rect = random_rect rng dims extent in
  check_same ~what:"random tiles" tiles rect

(* Tiles of real distributions (blocked, cyclic, replicated), queried with
   random sub-rects — the executor's actual workload. *)
let dists = [ "[x,y] -> [x]"; "[x,y] -> [x%2,y%1]"; "[x,y] -> [x,*]"; "[x,y] -> [y%1]" ]

let fuzz_distribution seed =
  let rng = Rng.create (seed * 131)  in
  let machine = Machine.grid [| 2 + Rng.int rng 2; 2 + Rng.int rng 2 |] in
  let shape = [| 8 + Rng.int rng 9; 8 + Rng.int rng 9 |] in
  let dist = D.parse_exn (List.nth dists (Rng.int rng (List.length dists))) in
  let tiles =
    Distal_ir.Distnot.tiles dist ~shape ~machine
    |> List.mapi (fun i (r, _owners) -> (r, i))
  in
  let rect = random_rect rng 2 (min shape.(0) shape.(1)) in
  check_same ~what:"distribution tiles" tiles rect

let qcheck_random =
  QCheck.Test.make ~name:"index == linear scan (random tiles)" ~count:500
    QCheck.small_nat
    (fun seed -> fuzz_random (succ seed))

let qcheck_distribution =
  QCheck.Test.make ~name:"index == linear scan (distribution tiles)" ~count:300
    QCheck.small_nat
    (fun seed -> fuzz_distribution (succ seed))

let test_edge_cases () =
  (* No tiles; empty query; query outside all tiles; scalar tiles. *)
  Alcotest.(check int) "empty index" 0
    (List.length (Rect_index.query (Rect_index.build []) (Rect.make ~lo:[| 0 |] ~hi:[| 4 |])));
  let tiles = [ (Rect.make ~lo:[| 0 |] ~hi:[| 4 |], 0); (Rect.make ~lo:[| 4 |] ~hi:[| 8 |], 1) ] in
  let idx = Rect_index.build tiles in
  Alcotest.(check int) "empty query" 0
    (List.length (Rect_index.query idx (Rect.make ~lo:[| 2 |] ~hi:[| 2 |])));
  Alcotest.(check int) "query past the tiles" 0
    (List.length (Rect_index.query idx (Rect.make ~lo:[| 9 |] ~hi:[| 12 |])));
  let scalar = Rect.make ~lo:[||] ~hi:[||] in
  Alcotest.(check int) "scalar tiles" 1
    (List.length (Rect_index.query (Rect_index.build [ (scalar, 0) ]) scalar))

let suites =
  [
    ( "rect index",
      [
        QCheck_alcotest.to_alcotest qcheck_random;
        QCheck_alcotest.to_alcotest qcheck_distribution;
        Alcotest.test_case "edge cases" `Quick test_edge_cases;
      ] );
  ]
