(* The observability subsystem (lib/obs): JSON round-trips, the metrics
   registry, Chrome-trace export (valid and deterministic across execution
   modes), critical-path analysis reproducing the simulator's total time,
   and profiled redistribution. *)

module Api = Distal.Api
module Machine = Api.Machine
module Obs = Distal_obs
module Json = Obs.Json
module Event = Obs.Event
module Metrics = Obs.Metrics
module Profile = Obs.Profile
module Cp = Obs.Critical_path
module M = Distal_algorithms.Matmul
module Figure = Distal_harness.Figure

let contains = Astring_contains.contains

let cannon33 () =
  let machine = Machine.grid [| 3; 3 |] in
  (Result.get_ok (M.cannon ~n:9 ~machine)).M.plan

(* {2 JSON} *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null; Json.Bool false ]);
        ("s", Json.String "quote \" backslash \\ newline \n unicode \t");
        ("nested", Json.Obj [ ("empty", Json.List []) ]);
        ("neg", Json.Float (-1.25e-3));
      ]
  in
  (match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "compact round trips" true (j = j')
  | Error e -> Alcotest.fail ("compact: " ^ e));
  match Json.parse (Json.to_string_pretty j) with
  | Ok j' -> Alcotest.(check bool) "pretty round trips" true (j = j')
  | Error e -> Alcotest.fail ("pretty: " ^ e)

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" s))
    [ "{"; "[1,"; "tru"; "\"unterminated"; "" ]

(* {2 Metrics} *)

let test_metrics_registry () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  Metrics.inc c 2.0;
  Metrics.inc_int c 3;
  let g = Metrics.gauge reg "g" in
  Metrics.set g 7.0;
  Metrics.set_max g 5.0;
  let h = Metrics.histogram reg "h" in
  Metrics.observe h 10.0;
  Metrics.observe h 30.0;
  Alcotest.(check (option (float 0.0))) "counter" (Some 5.0) (Metrics.value reg "c");
  Alcotest.(check (option (float 0.0))) "gauge keeps max" (Some 7.0)
    (Metrics.value reg "g");
  Alcotest.(check (option (float 0.0))) "histogram sums" (Some 40.0)
    (Metrics.value reg "h");
  Alcotest.(check (option (float 0.0))) "missing" None (Metrics.value reg "nope");
  Alcotest.(check (list string)) "names sorted" [ "c"; "g"; "h" ] (Metrics.names reg);
  (match Metrics.gauge reg "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise");
  match Json.parse (Json.to_string (Metrics.to_json reg)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("metrics json: " ^ e)

let test_stats_of_registry () =
  let reg = Metrics.create () in
  Metrics.set (Metrics.gauge reg "exec.time") 2.5;
  Metrics.inc (Metrics.counter reg "exec.flops") 100.0;
  Metrics.inc_int (Metrics.counter reg "exec.messages") 7;
  let s = Distal_runtime.Stats.of_registry reg in
  Alcotest.(check (float 0.0)) "time" 2.5 s.Distal_runtime.Stats.time;
  Alcotest.(check (float 0.0)) "flops" 100.0 s.Distal_runtime.Stats.flops;
  Alcotest.(check int) "messages" 7 s.Distal_runtime.Stats.messages;
  Alcotest.(check bool) "oom defaults false" false s.Distal_runtime.Stats.oom

(* {2 Chrome-trace export} *)

let trace_of_mode mode =
  let p = Profile.create () in
  let plan = cannon33 () in
  let data =
    match mode with Api.Exec.Full -> Api.random_inputs plan | Api.Exec.Model -> []
  in
  let r = Api.run_exn ~mode ~profile:p plan ~data in
  (Obs.Chrome_trace.of_profile p, r.Api.Exec.stats)

let test_trace_valid_json () =
  let trace, _ = trace_of_mode Api.Exec.Model in
  match Json.parse trace with
  | Error e -> Alcotest.fail ("trace is not valid JSON: " ^ e)
  | Ok j ->
      (match Json.member "traceEvents" j with
      | Some (Json.List events) ->
          Alcotest.(check bool) "has events" true (List.length events > 10)
      | _ -> Alcotest.fail "no traceEvents array");
      Alcotest.(check bool) "compute slices" true (contains trace "\"compute\"");
      Alcotest.(check bool) "comm slices" true (contains trace "\"comm\"");
      Alcotest.(check bool) "thread metadata" true (contains trace "thread_name")

let test_full_model_deterministic () =
  (* The event stream is driven by the cost model, never by the data, so a
     functional (Full) run and a Model run of the same spec must export
     byte-identical traces, and the simulated stats must agree. *)
  let full, fstats = trace_of_mode Api.Exec.Full in
  let model, mstats = trace_of_mode Api.Exec.Model in
  Alcotest.(check bool) "identical event streams" true (String.equal full model);
  Alcotest.(check (float 0.0)) "identical times" fstats.Api.Stats.time
    mstats.Api.Stats.time

(* {2 Critical path} *)

let analysed_run ?(data = []) ?(mode = Api.Exec.Model) plan =
  let p = Profile.create () in
  let r = Api.run_exn ~mode ~profile:p plan ~data in
  match Profile.runs p with
  | [ run ] -> (run, r.Api.Exec.stats)
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 run, got %d" (List.length rs))

let test_critical_path_cannon () =
  let run, stats = analysed_run (cannon33 ()) in
  match run.Profile.timeline with
  | None -> Alcotest.fail "no timeline recorded"
  | Some tl ->
      let cp = Cp.analyse tl in
      Alcotest.(check (float 0.0)) "end time = Stats.time" stats.Api.Stats.time
        cp.Cp.end_time;
      Alcotest.(check (float 0.0)) "timeline total agrees" tl.Cp.total cp.Cp.end_time;
      Alcotest.(check int) "a node per step + overhead" (List.length tl.Cp.steps + 1)
        (List.length cp.Cp.nodes);
      Alcotest.(check int) "slack for every proc" tl.Cp.nprocs
        (List.length cp.Cp.slack);
      (* Path time decomposes into its attributed parts. *)
      let parts =
        cp.Cp.compute_time +. cp.Cp.comm_time +. cp.Cp.overhead +. cp.Cp.reduction
      in
      Alcotest.(check (float 1e-12)) "attribution covers the path" cp.Cp.end_time parts

let test_critical_path_fig9 () =
  let n = 24 in
  let m2 = Machine.grid [| 2; 2 |] in
  let m3 = Machine.grid [| 2; 2; 2 |] in
  List.iter
    (fun alg ->
      let a = Result.get_ok alg in
      let run, stats = analysed_run a.M.plan in
      let tl = Option.get run.Profile.timeline in
      Alcotest.(check (float 0.0))
        (a.M.name ^ ": critical path = simulator")
        stats.Api.Stats.time
        (Cp.analyse tl).Cp.end_time)
    [
      M.cannon ~n ~machine:m2;
      M.pumma ~n ~machine:m2;
      M.summa ~n ~machine:m2 ();
      M.johnson ~n ~machine:m3 ();
      M.solomonik ~n ~machine:m3;
      M.cosma ~n ~machine:m3 ();
    ]

(* {2 Redistribution} *)

let test_redistribute_profiled () =
  let machine = Machine.grid [| 2; 2 |] in
  let p = Profile.create () in
  let stats =
    Api.redistribute ~machine ~profile:p ~shape:[| 8; 8 |]
      ~src:(Distal_ir.Distnot.parse_exn "[x,y] -> [x,y]")
      ~dst:(Distal_ir.Distnot.parse_exn "[x,y] -> [y,x]")
      ()
  in
  Alcotest.(check bool) "moved something" true (stats.Api.Stats.messages > 0);
  let run =
    match Profile.runs p with [ r ] -> r | _ -> Alcotest.fail "expected one run"
  in
  let copies =
    List.filter (fun (e : Event.t) -> e.Event.cat = "copy") (Profile.events p)
  in
  Alcotest.(check int) "a copy event per message" stats.Api.Stats.messages
    (List.length copies);
  match run.Profile.timeline with
  | None -> Alcotest.fail "redistribute must record a timeline"
  | Some tl ->
      Alcotest.(check int) "one exchange step" 1 (List.length tl.Cp.steps);
      Alcotest.(check (float 0.0)) "critical path = redistribute time"
        stats.Api.Stats.time
        (Cp.analyse tl).Cp.end_time

(* {2 Reports and bench JSON} *)

let test_report () =
  let run, _ = analysed_run (cannon33 ()) in
  let report = Obs.Report.run_report run in
  Alcotest.(check bool) "step table" true (contains report "bound by");
  Alcotest.(check bool) "critical path summary" true (contains report "critical path");
  Alcotest.(check bool) "metrics snapshot" true (contains report "exec.time");
  match Json.parse (Json.to_string (Obs.Report.run_to_json run)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("run json: " ^ e)

let test_figure_json () =
  let fig =
    {
      Figure.id = "figX";
      title = "test";
      unit_ = "GFLOP/s/node";
      nodes = [ 1; 2 ];
      series =
        [
          {
            Figure.name = "s";
            cells = [ (1, Figure.Value 1.5); (2, Figure.Oom) ];
          };
        ];
    }
  in
  let s = Json.to_string (Figure.to_json fig) in
  Alcotest.(check bool) "bench schema" true (contains s "distal-bench/v1");
  Alcotest.(check bool) "oom marked" true (contains s "\"oom\"");
  match Json.parse s with
  | Ok j -> (
      match Json.member "nodes" j with
      | Some (Json.List l) -> Alcotest.(check int) "node counts" 2 (List.length l)
      | _ -> Alcotest.fail "no nodes array")
  | Error e -> Alcotest.fail e

let test_compile_spans () =
  let machine = Machine.grid [| 2; 2 |] in
  let p = Profile.create () in
  let problem =
    Api.problem_exn ~profile:p ~machine ~stmt:"A(i,j) = B(i,k) * C(k,j)"
      ~tensors:
        [
          Api.tensor "A" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "B" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
          Api.tensor "C" [| 8; 8 |] ~dist:"[x,y] -> [x,y]";
        ]
      ()
  in
  let _plan = Api.compile_exn ~profile:p problem ~schedule:[] in
  let phases =
    List.filter_map
      (fun (e : Event.t) ->
        if e.Event.cat = "compile" && e.Event.pid = 0 then Some e.Event.name else None)
      (Profile.events p)
  in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true (List.mem name phases))
    [ "parse"; "typecheck"; "cin"; "schedule rewrites"; "lower" ]

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json errors" `Quick test_json_errors;
        Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
        Alcotest.test_case "stats of registry" `Quick test_stats_of_registry;
        Alcotest.test_case "trace valid json" `Quick test_trace_valid_json;
        Alcotest.test_case "full/model deterministic" `Quick
          test_full_model_deterministic;
        Alcotest.test_case "critical path cannon 3x3" `Quick test_critical_path_cannon;
        Alcotest.test_case "critical path fig9" `Quick test_critical_path_fig9;
        Alcotest.test_case "redistribute profiled" `Quick test_redistribute_profiled;
        Alcotest.test_case "run report" `Quick test_report;
        Alcotest.test_case "figure json" `Quick test_figure_json;
        Alcotest.test_case "compile spans" `Quick test_compile_spans;
      ] );
  ]
